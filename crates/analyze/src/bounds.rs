//! Verifier pass 1: the symbolic bounds checker.
//!
//! Proves, for any graph that passes `Graph::validate`, that every load
//! and store of a lowered kernel is in-bounds — without executing
//! anything. The proof is symbolic: each row index carries its
//! [`Provenance`], provenance determines the [`Bound`] the index is
//! strictly below, and the access is safe exactly when that bound equals
//! the accessed tensor's symbolic row count. The discharging facts are the
//! `Graph::validate` invariants (slot arrays hold vertex ids below
//! `num_vertices`, `in_eid` is a bijection over `0..num_edges`, `in_ptr`
//! is monotone with `in_ptr[num_vertices] == num_edges`) plus the loop
//! clamps visible in the IR itself (`min(..., num_vertices)`,
//! `min(f0 + TILE_LEN, FEAT)`).
//!
//! A failed proof is a [`BoundsViolation`] carrying the concrete index
//! expression that can exceed its buffer — the witness CI prints.

use ugrapher_core::abstraction::TensorType;
use ugrapher_core::ir::{Bound, KernelIr, Loop, Provenance, Stmt, Value};

/// One proved-in-bounds access of the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessProof {
    /// The rendered index expression, e.g. `A[(size_t)src * FEAT + f]`.
    pub expr: String,
    /// The symbolic bound the row index is strictly below.
    pub row_bound: Bound,
    /// The facts that discharge the proof obligation.
    pub justification: String,
}

/// The successful outcome of the bounds pass: every access of the kernel
/// with its discharged proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsProof {
    /// One entry per load plus one for the store, in statement order.
    pub accesses: Vec<AccessProof>,
}

impl BoundsProof {
    /// Number of accesses proved in-bounds.
    pub fn num_accesses(&self) -> usize {
        self.accesses.len()
    }
}

/// A failed bounds proof: a concrete index expression that can exceed its
/// buffer on some graph accepted by `Graph::validate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsViolation {
    /// The offending index expression (the witness).
    pub expr: String,
    /// Why the proof obligation cannot be discharged.
    pub detail: String,
}

impl std::fmt::Display for BoundsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out-of-bounds access {}: {}", self.expr, self.detail)
    }
}

/// Renders the index expression of an access the way the emitter would —
/// the violation witness must match the emitted source.
fn access_expr(buffer: &str, row: Provenance, feature_indexed: bool) -> String {
    if feature_indexed {
        format!("{buffer}[(size_t){} * FEAT + f]", row.var())
    } else {
        format!("{buffer}[{}]", row.var())
    }
}

/// Checks one access: the row index's proven bound must be the accessed
/// tensor's symbolic row count, the index variable must actually be bound
/// by an enclosing loop, and feature-strided accesses must sit inside the
/// clamped feature loop.
fn check_access(
    ir: &KernelIr,
    buffer: &str,
    tensor: TensorType,
    row: Provenance,
    feature_indexed: bool,
) -> Result<AccessProof, BoundsViolation> {
    let expr = access_expr(buffer, row, feature_indexed);
    let Some(rows) = Bound::rows_of(tensor) else {
        return Err(BoundsViolation {
            detail: format!("{buffer} has tensor type Null: no storage exists to index"),
            expr,
        });
    };
    // The index variable must be defined: `dst` by the destination loop
    // (vertex strategies) or the slot decode (edge strategies); `src`/`eid`
    // only by a slot loop.
    let has_slot_loop = ir
        .loops
        .iter()
        .any(|l| matches!(l, Loop::CsrSlots | Loop::EdgeGroup));
    let binder_ok = match row {
        Provenance::DstPartition => ir.loops.contains(&Loop::DstGroup),
        Provenance::DstIndirect | Provenance::SrcIndirect | Provenance::EidIndirect => {
            has_slot_loop
        }
    };
    if !binder_ok {
        return Err(BoundsViolation {
            detail: format!(
                "index `{}` has provenance {row:?} but no enclosing loop binds it",
                row.var()
            ),
            expr,
        });
    }
    if row.bound() != rows {
        return Err(BoundsViolation {
            detail: format!(
                "index `{}` is only bounded by {} but {buffer} has {} rows",
                row.var(),
                row.bound().symbol(),
                rows.symbol()
            ),
            expr,
        });
    }
    let mut justification = format!(
        "{} < {} by {}",
        row.var(),
        row.bound().symbol(),
        row.discharged_by()
    );
    if feature_indexed {
        let has_feature_loop = ir.loops.iter().any(|l| matches!(l, Loop::Feature { .. }));
        if !has_feature_loop {
            return Err(BoundsViolation {
                detail: "feature-strided access outside any feature loop: `f` is unbound"
                    .to_owned(),
                expr,
            });
        }
        justification.push_str("; f < FEAT by loop clamp min(f0 + TILE_LEN, FEAT)");
    }
    Ok(AccessProof {
        expr,
        row_bound: rows,
        justification,
    })
}

/// Runs the bounds pass over a lowered kernel: every load and the output
/// store must discharge its proof obligation.
///
/// # Errors
///
/// Returns the first [`BoundsViolation`] (with its concrete witness index
/// expression) if any access cannot be proved in-bounds.
pub fn check_bounds(ir: &KernelIr) -> Result<BoundsProof, BoundsViolation> {
    let mut accesses = Vec::new();
    fn check_value(
        ir: &KernelIr,
        accesses: &mut Vec<AccessProof>,
        v: &Value,
    ) -> Result<(), BoundsViolation> {
        if let Value::Load(l) = v {
            accesses.push(check_access(
                ir,
                l.buf.name(),
                l.tensor,
                l.row,
                l.feature_indexed,
            )?);
        }
        Ok(())
    }
    let mut store_seen = false;
    for stmt in &ir.body {
        match stmt {
            Stmt::DefineEdgeTmp { a, b, .. } => {
                check_value(ir, &mut accesses, a)?;
                check_value(ir, &mut accesses, b)?;
            }
            Stmt::Store(s) => {
                check_value(ir, &mut accesses, &s.value)?;
                accesses.push(check_access(ir, "C", s.tensor, s.row, true)?);
                store_seen = true;
            }
        }
    }
    if !store_seen {
        return Err(BoundsViolation {
            expr: "C[?]".to_owned(),
            detail: "kernel body has no output store to verify".to_owned(),
        });
    }
    Ok(BoundsProof { accesses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::abstraction::OpInfo;
    use ugrapher_core::ir::{Load, OperandBuf};
    use ugrapher_core::lower::lower;
    use ugrapher_core::plan::KernelPlan;
    use ugrapher_core::schedule::{ParallelInfo, Strategy};

    fn ir(op: OpInfo, strategy: Strategy) -> KernelIr {
        let plan = KernelPlan::generate(op, ParallelInfo::basic(strategy), 200, 900, 8).unwrap();
        lower(&plan).unwrap()
    }

    #[test]
    fn every_lowered_registry_kernel_proves_in_bounds() {
        for op in ugrapher_core::abstraction::registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                let k = ir(op, strategy);
                let proof = check_bounds(&k).unwrap_or_else(|v| panic!("{op:?} {strategy:?}: {v}"));
                // One proof per load plus one for the store.
                assert_eq!(proof.num_accesses(), k.loads().len() + 1);
                for a in &proof.accesses {
                    assert!(!a.justification.is_empty());
                }
            }
        }
    }

    #[test]
    fn mismatched_provenance_is_a_violation_with_witness() {
        // Corrupt the IR: the store row claims edge-id provenance while
        // the output tensor has num_vertices rows. eid < num_edges proves
        // nothing about a vertex-rows buffer.
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadEdge);
        let s = match k.body.last_mut().unwrap() {
            Stmt::Store(s) => s,
            _ => unreachable!(),
        };
        s.row = ugrapher_core::ir::Provenance::EidIndirect;
        let v = check_bounds(&k).unwrap_err();
        assert_eq!(v.expr, "C[(size_t)eid * FEAT + f]", "witness is concrete");
        assert!(v.detail.contains("num_edges"), "{}", v.detail);
        assert!(v.detail.contains("num_vertices"), "{}", v.detail);
    }

    #[test]
    fn unbound_index_variable_is_a_violation() {
        // Strip the slot loops: `src` is read but nothing binds it.
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
        k.loops.retain(|l| !matches!(l, Loop::CsrSlots));
        let v = check_bounds(&k).unwrap_err();
        assert!(v.detail.contains("no enclosing loop binds"), "{}", v.detail);
    }

    #[test]
    fn null_tensor_load_is_a_violation() {
        let mut k = ir(OpInfo::weighted_aggregation_sum(), Strategy::ThreadEdge);
        if let Stmt::DefineEdgeTmp { b, .. } = &mut k.body[0] {
            *b = Value::Load(Load {
                buf: OperandBuf::B,
                tensor: TensorType::Null,
                row: Provenance::EidIndirect,
                feature_indexed: false,
            });
        }
        let v = check_bounds(&k).unwrap_err();
        assert!(v.detail.contains("Null"), "{}", v.detail);
    }

    #[test]
    fn missing_store_is_a_violation() {
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
        k.body.retain(|s| !matches!(s, Stmt::Store(_)));
        assert!(check_bounds(&k).is_err());
    }

    #[test]
    fn store_without_feature_loop_is_a_violation() {
        let mut k = ir(OpInfo::message_creation_add(), Strategy::ThreadEdge);
        k.loops.retain(|l| !matches!(l, Loop::Feature { .. }));
        let v = check_bounds(&k).unwrap_err();
        assert!(
            v.detail.contains("unbound") || v.detail.contains("feature"),
            "{}",
            v.detail
        );
    }

    #[test]
    fn hand_built_store_suppresses_false_positives() {
        // A legitimate hand-built IR (edge output under warp-edge) passes.
        let k = ir(OpInfo::message_creation_add(), Strategy::WarpEdge);
        let proof = check_bounds(&k).unwrap();
        assert!(proof
            .accesses
            .iter()
            .any(|a| a.expr == "C[(size_t)eid * FEAT + f]"));
        assert!(proof
            .accesses
            .iter()
            .any(|a| a.justification.contains("bijection")));
    }
}
