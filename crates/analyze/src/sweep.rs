//! The registry sweep: run the full analysis — static pass, IR verifier
//! passes, plus dynamic cross-check — over every legal Table 4 operator
//! under all four parallelization strategies and a set of grouping/tiling
//! variants.
//!
//! This is the CI driver behind `analyze-registry`: a clean sweep proves
//! that the static race verdicts agree with the IR write-sets *and* the
//! sim-trace write-log oracle on the whole operator space, that every
//! load/store carries a discharged bounds proof, that every combination
//! has a determinism label, and that no schedule or IR lint fires on any
//! combination the tuner would legitimately propose.
//!
//! Each sweep runs under an `analyze.sweep` span stamped with a fresh
//! trace id (also recorded on the [`SweepReport`]), and per-combo verifier
//! outcomes are counted in the process-wide metrics registry
//! (`ugrapher_analyze_verifier_total{pass=...}`,
//! `ugrapher_analyze_determinism_total{class=...}`).

use ugrapher_core::abstraction::{registry, OpInfo};
use ugrapher_core::ir::DeterminismClass;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::generate::uniform_random;
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;
use ugrapher_util::json::Value;

use crate::dynamic::cross_check_plan;
use crate::error::AnalyzeError;
use crate::statics::analyze_static;

/// Shape of the sweep: the synthetic graph the analyses run on and the
/// schedule-knob variants each operator × strategy is checked under.
///
/// The feature dimension must be a power of two so every tiling knob
/// divides it evenly and the dynamic write-set is word-exact (see
/// [`ugrapher_core::exec::collect_writes`]).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Vertices of the synthetic graph.
    pub num_vertices: usize,
    /// Edges of the synthetic graph.
    pub num_edges: usize,
    /// Generator seed (the sweep is fully deterministic).
    pub seed: u64,
    /// Feature dimension (power of two).
    pub feat: usize,
    /// V/E grouping knob variants.
    pub groupings: Vec<usize>,
    /// Feature tiling knob variants.
    pub tilings: Vec<usize>,
}

impl SweepConfig {
    /// The CI configuration: a graph dense enough that every racing
    /// schedule has a witness, with grouping/tiling variants spanning the
    /// knob range without triggering degenerate-knob lints.
    pub fn full() -> Self {
        SweepConfig {
            num_vertices: 300,
            num_edges: 2400,
            seed: 11,
            feat: 8,
            groupings: vec![1, 4, 64],
            tilings: vec![1, 2, 8],
        }
    }

    /// A reduced configuration for test suites: same operator × strategy
    /// coverage, smaller graph and fewer knob variants.
    pub fn quick() -> Self {
        SweepConfig {
            num_vertices: 40,
            num_edges: 200,
            seed: 7,
            feat: 4,
            groupings: vec![1, 8],
            tilings: vec![1, 4],
        }
    }

    /// The synthetic graph this configuration analyzes.
    pub fn graph(&self) -> Graph {
        uniform_random(self.num_vertices, self.num_edges, self.seed)
    }
}

/// One failed combination of the sweep.
#[derive(Debug, Clone)]
pub struct SweepFinding {
    /// The operator that failed.
    pub op: OpInfo,
    /// The schedule that failed.
    pub schedule: ParallelInfo,
    /// What went wrong (analysis error or lint text).
    pub detail: String,
}

impl std::fmt::Display for SweepFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} under {}: {}", self.op, self.schedule, self.detail)
    }
}

/// Per-class tallies of the determinism labels the sweep assigned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeterminismCounts {
    /// Bitwise-deterministic sequential kernels.
    pub sequential: usize,
    /// Contended but order-insensitive (atomic CAS max/min) kernels.
    pub atomic_order_insensitive: usize,
    /// Reduction-order-dependent (atomic float sum/mean) kernels.
    pub atomic_order_dependent: usize,
}

impl DeterminismCounts {
    fn record(&mut self, class: DeterminismClass) {
        match class {
            DeterminismClass::Sequential => self.sequential += 1,
            DeterminismClass::AtomicOrderInsensitive => self.atomic_order_insensitive += 1,
            DeterminismClass::AtomicOrderDependent => self.atomic_order_dependent += 1,
        }
    }

    /// Total labels assigned (must equal the combos that passed the static
    /// pass).
    pub fn total(&self) -> usize {
        self.sequential + self.atomic_order_insensitive + self.atomic_order_dependent
    }
}

/// The outcome of one registry sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Combinations analyzed (operators × strategies × knob variants).
    pub combos_checked: usize,
    /// Combinations whose static analysis found a concrete race witness.
    pub static_witnesses: usize,
    /// Combinations whose simulated trace observed contended words.
    pub dynamic_conflicts: usize,
    /// Combinations whose every load/store carries a discharged symbolic
    /// bounds proof.
    pub bounds_proved: usize,
    /// Determinism labels assigned, tallied per class.
    pub determinism: DeterminismCounts,
    /// Every failure: atomic mismatches, bounds violations, legality
    /// findings, IR lints, dynamic mismatches.
    pub findings: Vec<SweepFinding>,
    /// Trace id of the `analyze.sweep` span this report was produced
    /// under (joins the sweep to end-to-end traces).
    pub trace_id: u64,
}

impl SweepReport {
    /// `true` when no combination produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable JSON rendering (compact, deterministic key order)
    /// for `analyze-registry --json` and downstream CI tooling.
    pub fn to_json(&self) -> String {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::obj(vec![
                    ("op", Value::Str(format!("{:?}", f.op))),
                    ("schedule", Value::Str(f.schedule.to_string())),
                    ("detail", Value::Str(f.detail.clone())),
                ])
            })
            .collect();
        Value::obj(vec![
            ("combos_checked", Value::Num(self.combos_checked as f64)),
            ("static_witnesses", Value::Num(self.static_witnesses as f64)),
            (
                "dynamic_conflicts",
                Value::Num(self.dynamic_conflicts as f64),
            ),
            ("bounds_proved", Value::Num(self.bounds_proved as f64)),
            (
                "determinism",
                Value::obj(vec![
                    ("sequential", Value::Num(self.determinism.sequential as f64)),
                    (
                        "atomic_order_insensitive",
                        Value::Num(self.determinism.atomic_order_insensitive as f64),
                    ),
                    (
                        "atomic_order_dependent",
                        Value::Num(self.determinism.atomic_order_dependent as f64),
                    ),
                ]),
            ),
            ("clean", Value::Bool(self.is_clean())),
            ("findings", Value::Arr(findings)),
            ("trace_id", Value::Num(self.trace_id as f64)),
        ])
        .to_string_compact()
    }
}

/// The per-combo analysis outcome, accumulated into the [`SweepReport`]
/// in combo order after the parallel phase.
struct ComboOutcome {
    findings: Vec<SweepFinding>,
    bounds_proved: bool,
    determinism: Option<DeterminismClass>,
    static_witness: bool,
    dynamic_conflict: bool,
}

/// Runs the full analysis stack on one (operator, schedule) combination.
/// Bumps the per-pass verifier and determinism metrics (thread-safe;
/// counts are order-independent and therefore deterministic even under a
/// parallel sweep).
fn analyze_combo(
    graph: &Graph,
    device: &DeviceConfig,
    feat: usize,
    op: OpInfo,
    parallel: ParallelInfo,
) -> ComboOutcome {
    let metrics = ugrapher_obs::MetricsRegistry::global();
    let verifier = |pass: &str| {
        metrics.inc_labeled(ugrapher_obs::metrics::ANALYZE_VERIFIER, "pass", pass);
    };
    let fail = |detail: String| SweepFinding {
        op,
        schedule: parallel,
        detail,
    };
    let mut outcome = ComboOutcome {
        findings: Vec::new(),
        bounds_proved: false,
        determinism: None,
        static_witness: false,
        dynamic_conflict: false,
    };
    let stat = match analyze_static(graph, op, parallel, feat) {
        Ok(stat) => stat,
        Err(e) => {
            match &e {
                AnalyzeError::OutOfBounds { .. } => verifier("bounds-violation"),
                AnalyzeError::AtomicMismatch { .. } => verifier("race-mismatch"),
                _ => {}
            }
            outcome.findings.push(fail(e.to_string()));
            return outcome;
        }
    };
    // Static pass succeeded: the bounds proof discharged and all three
    // race derivations (plan flag, shared analysis, IR write-set) agree.
    verifier("bounds-ok");
    verifier("race-ok");
    outcome.bounds_proved = true;
    outcome.determinism = Some(stat.determinism.class);
    metrics.inc_labeled(
        ugrapher_obs::metrics::ANALYZE_DETERMINISM,
        "class",
        stat.determinism.class.label(),
    );
    for lint in &stat.schedule_lints {
        outcome
            .findings
            .push(fail(format!("schedule lint: {lint}")));
    }
    verifier(if stat.codegen.is_empty() {
        "lint-ok"
    } else {
        "lint-finding"
    });
    for finding in &stat.codegen {
        outcome.findings.push(fail(format!("IR lint: {finding}")));
    }
    outcome.static_witness = stat.race.witness.is_some();
    match cross_check_plan(graph, &stat.plan, device) {
        Ok(cc) => {
            verifier("dynamic-ok");
            outcome.dynamic_conflict = cc.observed_conflicts();
        }
        Err(e) => {
            verifier("dynamic-mismatch");
            outcome.findings.push(fail(e.to_string()));
        }
    }
    outcome
}

/// Sweeps the full operator registry × [`Strategy::ALL`] × knob variants,
/// running the static pass, the IR verifier passes and the dynamic
/// cross-check on each combination and collecting every finding.
///
/// Combinations are analyzed on a scoped worker pool (they are mutually
/// independent); the report is folded in combo-enumeration order, so the
/// findings list, all counters and the `--json` rendering are
/// byte-deterministic regardless of worker interleaving.
pub fn analyze_registry(device: &DeviceConfig, cfg: &SweepConfig) -> SweepReport {
    analyze_registry_with_progress(device, cfg, None)
}

/// [`analyze_registry`] with a progress hook: `progress` is invoked after
/// every combination with the number checked so far (in this sweep,
/// monotonically increasing; completion order across workers is not
/// combo order). Each combination also bumps the process-wide
/// `ugrapher_analyze_combos_total` counter, which is what the
/// `analyze-registry --progress` flag reports.
pub fn analyze_registry_with_progress(
    device: &DeviceConfig,
    cfg: &SweepConfig,
    progress: Option<&mut (dyn FnMut(usize) + Send)>,
) -> SweepReport {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let trace_id = ugrapher_obs::next_trace_id();
    let mut span = ugrapher_obs::global().span_traced(
        "analyze.sweep",
        ugrapher_obs::SpanKind::Analyze,
        trace_id,
    );
    let metrics = ugrapher_obs::MetricsRegistry::global();
    let graph = cfg.graph();

    // Enumerate the combo space up front so workers claim indices and the
    // fold below can restore enumeration order.
    let mut combos: Vec<(OpInfo, ParallelInfo)> = Vec::new();
    for op in registry::all_valid_ops() {
        for strategy in Strategy::ALL {
            for &grouping in &cfg.groupings {
                for &tiling in &cfg.tilings {
                    combos.push((op, ParallelInfo::new(strategy, grouping, tiling)));
                }
            }
        }
    }

    let has_progress = progress.is_some();
    let progress = Mutex::new(progress);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<(usize, ComboOutcome)>> = Mutex::new(Vec::with_capacity(combos.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(combos.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, ComboOutcome)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= combos.len() {
                        break;
                    }
                    let (op, parallel) = combos[i];
                    metrics.inc(ugrapher_obs::metrics::ANALYZE_COMBOS);
                    local.push((i, analyze_combo(&graph, device, cfg.feat, op, parallel)));
                    if has_progress {
                        // fetch_add under the lock keeps the reported
                        // counts monotonic across workers.
                        let mut hook = progress.lock().unwrap_or_else(|e| e.into_inner());
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(hook) = hook.as_deref_mut() {
                            hook(n);
                        }
                    }
                }
                outcomes
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });

    let mut rows = outcomes.into_inner().unwrap_or_else(|e| e.into_inner());
    rows.sort_by_key(|(i, _)| *i);
    let mut report = SweepReport {
        trace_id,
        ..SweepReport::default()
    };
    for (_, outcome) in rows {
        report.combos_checked += 1;
        if outcome.bounds_proved {
            report.bounds_proved += 1;
        }
        if let Some(class) = outcome.determinism {
            report.determinism.record(class);
        }
        if outcome.static_witness {
            report.static_witnesses += 1;
        }
        if outcome.dynamic_conflict {
            report.dynamic_conflicts += 1;
        }
        report.findings.extend(outcome.findings);
    }
    if span.is_enabled() {
        span.attr("combos", report.combos_checked)
            .attr("findings", report.findings.len())
            .attr("bounds_proved", report.bounds_proved)
            .attr("determinism_labels", report.determinism.total());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_configs_avoid_degenerate_knobs() {
        for cfg in [SweepConfig::full(), SweepConfig::quick()] {
            assert!(cfg.feat.is_power_of_two());
            for &t in &cfg.tilings {
                assert!(t <= cfg.feat, "tiling {t} would clamp against {}", cfg.feat);
            }
            for &g in &cfg.groupings {
                assert!(g < cfg.num_vertices && g < cfg.num_edges);
            }
        }
    }

    #[test]
    fn report_json_round_trips() {
        let mut report = SweepReport {
            combos_checked: 3,
            static_witnesses: 1,
            dynamic_conflicts: 1,
            bounds_proved: 3,
            trace_id: 42,
            ..SweepReport::default()
        };
        report.determinism.record(DeterminismClass::Sequential);
        report
            .determinism
            .record(DeterminismClass::AtomicOrderDependent);
        let v = ugrapher_util::json::parse(&report.to_json()).unwrap();
        assert_eq!(v.field("combos_checked").unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(v.field("bounds_proved").unwrap().as_f64().unwrap(), 3.0);
        assert!(v.field("clean").unwrap().as_bool().unwrap());
        assert_eq!(v.field("trace_id").unwrap().as_f64().unwrap(), 42.0);
        let d = v.field("determinism").unwrap();
        assert_eq!(d.field("sequential").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(
            d.field("atomic_order_dependent").unwrap().as_f64().unwrap(),
            1.0
        );
        assert_eq!(v.field("findings").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn findings_serialize_with_context() {
        let report = SweepReport {
            combos_checked: 1,
            findings: vec![SweepFinding {
                op: ugrapher_core::abstraction::OpInfo::aggregation_sum(),
                schedule: ParallelInfo::basic(Strategy::ThreadEdge),
                detail: "synthetic \"finding\"".to_owned(),
            }],
            ..SweepReport::default()
        };
        let v = ugrapher_util::json::parse(&report.to_json()).unwrap();
        assert!(!v.field("clean").unwrap().as_bool().unwrap());
        let f = &v.field("findings").unwrap().as_arr().unwrap()[0];
        assert!(f
            .field("detail")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("finding"));
        assert!(f
            .field("schedule")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("TE"));
    }
}
