//! The registry sweep: run the full analysis — static pass plus dynamic
//! cross-check — over every legal Table 4 operator under all four
//! parallelization strategies and a set of grouping/tiling variants.
//!
//! This is the CI driver behind `analyze-registry`: a clean sweep proves
//! that the static race verdicts agree with sim-trace write-sets on the
//! whole operator space, and that no schedule or codegen lint fires on any
//! combination the tuner would legitimately propose.

use ugrapher_core::abstraction::{registry, OpInfo};
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::generate::uniform_random;
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;

use crate::dynamic::cross_check_plan;
use crate::statics::analyze_static;

/// Shape of the sweep: the synthetic graph the analyses run on and the
/// schedule-knob variants each operator × strategy is checked under.
///
/// The feature dimension must be a power of two so every tiling knob
/// divides it evenly and the dynamic write-set is word-exact (see
/// [`ugrapher_core::exec::collect_writes`]).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Vertices of the synthetic graph.
    pub num_vertices: usize,
    /// Edges of the synthetic graph.
    pub num_edges: usize,
    /// Generator seed (the sweep is fully deterministic).
    pub seed: u64,
    /// Feature dimension (power of two).
    pub feat: usize,
    /// V/E grouping knob variants.
    pub groupings: Vec<usize>,
    /// Feature tiling knob variants.
    pub tilings: Vec<usize>,
}

impl SweepConfig {
    /// The CI configuration: a graph dense enough that every racing
    /// schedule has a witness, with grouping/tiling variants spanning the
    /// knob range without triggering degenerate-knob lints.
    pub fn full() -> Self {
        SweepConfig {
            num_vertices: 300,
            num_edges: 2400,
            seed: 11,
            feat: 8,
            groupings: vec![1, 4, 64],
            tilings: vec![1, 2, 8],
        }
    }

    /// A reduced configuration for test suites: same operator × strategy
    /// coverage, smaller graph and fewer knob variants.
    pub fn quick() -> Self {
        SweepConfig {
            num_vertices: 40,
            num_edges: 200,
            seed: 7,
            feat: 4,
            groupings: vec![1, 8],
            tilings: vec![1, 4],
        }
    }

    /// The synthetic graph this configuration analyzes.
    pub fn graph(&self) -> Graph {
        uniform_random(self.num_vertices, self.num_edges, self.seed)
    }
}

/// One failed combination of the sweep.
#[derive(Debug, Clone)]
pub struct SweepFinding {
    /// The operator that failed.
    pub op: OpInfo,
    /// The schedule that failed.
    pub schedule: ParallelInfo,
    /// What went wrong (analysis error or lint text).
    pub detail: String,
}

impl std::fmt::Display for SweepFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} under {}: {}", self.op, self.schedule, self.detail)
    }
}

/// The outcome of one registry sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Combinations analyzed (operators × strategies × knob variants).
    pub combos_checked: usize,
    /// Combinations whose static analysis found a concrete race witness.
    pub static_witnesses: usize,
    /// Combinations whose simulated trace observed contended words.
    pub dynamic_conflicts: usize,
    /// Every failure: atomic mismatches, legality findings, codegen lints,
    /// dynamic mismatches.
    pub findings: Vec<SweepFinding>,
}

impl SweepReport {
    /// `true` when no combination produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Sweeps the full operator registry × [`Strategy::ALL`] × knob variants,
/// running the static pass and the dynamic cross-check on each combination
/// and collecting every finding.
pub fn analyze_registry(device: &DeviceConfig, cfg: &SweepConfig) -> SweepReport {
    analyze_registry_with_progress(device, cfg, None)
}

/// [`analyze_registry`] with a progress hook: `progress` is invoked after
/// every combination with the number checked so far (in this sweep).
/// Each combination also bumps the process-wide
/// `ugrapher_analyze_combos_total` counter, which is what the
/// `analyze-registry --progress` flag reports.
pub fn analyze_registry_with_progress(
    device: &DeviceConfig,
    cfg: &SweepConfig,
    mut progress: Option<&mut dyn FnMut(usize)>,
) -> SweepReport {
    let mut span = ugrapher_obs::global().span("analyze.sweep", ugrapher_obs::SpanKind::Analyze);
    let graph = cfg.graph();
    let mut report = SweepReport::default();
    for op in registry::all_valid_ops() {
        for strategy in Strategy::ALL {
            for &grouping in &cfg.groupings {
                for &tiling in &cfg.tilings {
                    let parallel = ParallelInfo::new(strategy, grouping, tiling);
                    report.combos_checked += 1;
                    ugrapher_obs::MetricsRegistry::global()
                        .inc(ugrapher_obs::metrics::ANALYZE_COMBOS);
                    if let Some(hook) = progress.as_deref_mut() {
                        hook(report.combos_checked);
                    }
                    let fail = |detail: String| SweepFinding {
                        op,
                        schedule: parallel,
                        detail,
                    };
                    let stat = match analyze_static(&graph, op, parallel, cfg.feat) {
                        Ok(stat) => stat,
                        Err(e) => {
                            report.findings.push(fail(e.to_string()));
                            continue;
                        }
                    };
                    for lint in &stat.schedule_lints {
                        report.findings.push(fail(format!("schedule lint: {lint}")));
                    }
                    for finding in &stat.codegen {
                        report
                            .findings
                            .push(fail(format!("codegen lint: {finding}")));
                    }
                    if stat.race.witness.is_some() {
                        report.static_witnesses += 1;
                    }
                    match cross_check_plan(&graph, &stat.plan, device) {
                        Ok(cc) => {
                            if cc.observed_conflicts() {
                                report.dynamic_conflicts += 1;
                            }
                        }
                        Err(e) => report.findings.push(fail(e.to_string())),
                    }
                }
            }
        }
    }
    if span.is_enabled() {
        span.attr("combos", report.combos_checked)
            .attr("findings", report.findings.len());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_configs_avoid_degenerate_knobs() {
        for cfg in [SweepConfig::full(), SweepConfig::quick()] {
            assert!(cfg.feat.is_power_of_two());
            for &t in &cfg.tilings {
                assert!(t <= cfg.feat, "tiling {t} would clamp against {}", cfg.feat);
            }
            for &g in &cfg.groupings {
                assert!(g < cfg.num_vertices && g < cfg.num_edges);
            }
        }
    }
}
