//! # ugrapher-analyze
//!
//! A static analyzer for uGrapher `(operator, schedule, graph-shape)`
//! triples, with a dynamic cross-check against the GPU simulator's
//! instrumented access stream. Three analysis passes:
//!
//! * **race detection** ([`statics::analyze_static`], [`RaceVerdict`]) —
//!   symbolically derives the output write-set per parallel work item
//!   (Table 4 tensor types decide whether the output index is
//!   per-destination or per-edge) and decides whether two work items can
//!   write the same element; on a concrete graph it also produces a
//!   [`RaceWitness`] — two work items and the row they share. The verdict
//!   must agree with [`KernelPlan::needs_atomic`]; divergence is
//!   [`AnalyzeError::AtomicMismatch`].
//! * **schedule legality** — the shared legality gate
//!   ([`ugrapher_core::analysis::check_context`]) plus warning-level
//!   [`ScheduleLint`]s (clamped tiling, degenerate grouping).
//! * **codegen lint** ([`codegen::lint_cuda`]) — parses the emitted CUDA
//!   translation unit and flags residual NULL-operand loads after fusion,
//!   operand buffers the kernel never reads, and atomic statements that
//!   contradict the race verdict.
//!
//! The **dynamic cross-check** ([`dynamic::cross_check`]) replays the
//! schedule through `ugrapher-sim` with its word-granular write log
//! enabled and verifies that contended output words appear exactly when
//! the static witness analysis predicts a race — and that every contended
//! word is atomically updated.
//!
//! [`sweep::analyze_registry`] runs all of the above over the paper's full
//! operator registry under all four parallelization strategies and a set
//! of grouping/tiling variants; the `analyze-registry` binary wires it
//! into CI (non-zero exit on any finding).
//!
//! # Example
//!
//! ```
//! use ugrapher_analyze::{analyze_static, cross_check};
//! use ugrapher_core::abstraction::OpInfo;
//! use ugrapher_core::schedule::{ParallelInfo, Strategy};
//! use ugrapher_graph::generate::uniform_random;
//! use ugrapher_sim::DeviceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = uniform_random(100, 800, 1);
//! let op = OpInfo::aggregation_sum();
//! let schedule = ParallelInfo::basic(Strategy::ThreadEdge);
//! let report = analyze_static(&g, op, schedule, 8)?;
//! assert!(report.race.needs_atomic);
//! assert!(report.race.witness.is_some(), "two items share a destination");
//! // The simulated write-set confirms the verdict.
//! let cc = cross_check(&g, op, schedule, 8, &DeviceConfig::v100())?;
//! assert!(cc.observed_conflicts());
//! # Ok(())
//! # }
//! ```
//!
//! [`KernelPlan::needs_atomic`]: ugrapher_core::plan::KernelPlan::needs_atomic
//! [`ScheduleLint`]: ugrapher_core::analysis::ScheduleLint
//! [`RaceWitness`]: ugrapher_core::analysis::RaceWitness

pub mod codegen;
pub mod dynamic;
mod error;
pub mod statics;
pub mod sweep;

pub use codegen::{lint_cuda, CodegenFinding};
pub use dynamic::{cross_check, cross_check_plan, CrossCheck};
pub use error::AnalyzeError;
pub use statics::{analyze_static, audit_plan, RaceVerdict, StaticReport};
pub use sweep::{
    analyze_registry, analyze_registry_with_progress, SweepConfig, SweepFinding, SweepReport,
};
