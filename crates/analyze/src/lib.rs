//! # ugrapher-analyze
//!
//! A static analyzer and IR verifier for uGrapher
//! `(operator, schedule, graph-shape)` triples, with a dynamic cross-check
//! against the GPU simulator's instrumented access stream.
//!
//! Every kernel plan is first lowered to the typed SSA-like kernel IR
//! ([`ugrapher_core::ir::KernelIr`] via [`ugrapher_core::lower::lower`]) —
//! the same IR the CUDA emitter renders from — and the verifier passes run
//! over that IR, not over generated text:
//!
//! * **race detection** ([`statics::analyze_static`], [`RaceVerdict`]) —
//!   three independent derivations of the atomic requirement must agree:
//!   the plan's recorded `needs_atomic`, the symbolic write-set analysis
//!   (which on a concrete graph also produces a [`RaceWitness`] — two work
//!   items and the row they share), and the store shape of the lowered IR
//!   ([`KernelIr::store_races`]). Any divergence is
//!   [`AnalyzeError::AtomicMismatch`].
//! * **symbolic bounds proof** ([`bounds::check_bounds`]) — proves every
//!   load and store of the lowered kernel in-bounds for *any* graph
//!   passing `Graph::validate`, by discharging each row index against the
//!   invariant that justifies it (CSR partition sums, `col_idx < V`,
//!   `in_eid` bijectivity) and each feature index against its tile clamp.
//!   Failure carries the concrete witness index expression
//!   ([`AnalyzeError::OutOfBounds`]).
//! * **determinism classification** ([`determinism::classify`]) — labels
//!   every kernel bitwise-deterministic (sequential reduction or pure
//!   copy), atomic-but-order-insensitive (CAS max/min), or
//!   reduction-order-dependent (atomic float sum/mean).
//! * **schedule legality** — the shared legality gate
//!   ([`ugrapher_core::analysis::check_context`]) plus warning-level
//!   [`ScheduleLint`]s (clamped tiling, degenerate grouping).
//! * **IR lint** ([`irlint::lint_ir`]) — flags residual NULL-operand loads
//!   after fusion, operand buffers the kernel never reads, and update
//!   atomicity that contradicts the race verdict — on the IR itself,
//!   replacing the retired text-based CUDA lint (a regression test proved
//!   verdict parity across the whole registry before the text lint was
//!   deleted).
//!
//! The **dynamic cross-check** ([`dynamic::cross_check`]) replays the
//! schedule through `ugrapher-sim` with its word-granular write log
//! enabled and verifies that contended output words appear exactly when
//! the static witness analysis predicts a race — and that every contended
//! word is atomically updated.
//!
//! [`sweep::analyze_registry`] runs all of the above over the paper's full
//! operator registry under all four parallelization strategies and a set
//! of grouping/tiling variants; the `analyze-registry` binary wires it
//! into CI (non-zero exit on any finding, `--json` for machine-readable
//! reports).
//!
//! # Example
//!
//! ```
//! use ugrapher_analyze::{analyze_static, cross_check};
//! use ugrapher_core::abstraction::OpInfo;
//! use ugrapher_core::ir::DeterminismClass;
//! use ugrapher_core::schedule::{ParallelInfo, Strategy};
//! use ugrapher_graph::generate::uniform_random;
//! use ugrapher_sim::DeviceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = uniform_random(100, 800, 1);
//! let op = OpInfo::aggregation_sum();
//! let schedule = ParallelInfo::basic(Strategy::ThreadEdge);
//! let report = analyze_static(&g, op, schedule, 8)?;
//! assert!(report.race.needs_atomic);
//! assert!(report.race.witness.is_some(), "two items share a destination");
//! // The verifier passes ran over the lowered IR.
//! assert!(report.bounds.num_accesses() >= 2, "every access carries a proof");
//! assert_eq!(report.determinism.class, DeterminismClass::AtomicOrderDependent);
//! // The simulated write-set confirms the verdict.
//! let cc = cross_check(&g, op, schedule, 8, &DeviceConfig::v100())?;
//! assert!(cc.observed_conflicts());
//! # Ok(())
//! # }
//! ```
//!
//! [`KernelIr::store_races`]: ugrapher_core::ir::KernelIr::store_races
//! [`ScheduleLint`]: ugrapher_core::analysis::ScheduleLint
//! [`RaceWitness`]: ugrapher_core::analysis::RaceWitness

#![deny(missing_docs)]

pub mod bounds;
pub mod determinism;
pub mod dynamic;
mod error;
pub mod irlint;
pub mod statics;
pub mod sweep;

pub use bounds::{check_bounds, AccessProof, BoundsProof, BoundsViolation};
pub use determinism::{classify, DeterminismReport};
pub use dynamic::{cross_check, cross_check_plan, CrossCheck};
pub use error::AnalyzeError;
pub use irlint::{lint_ir, IrFinding};
pub use statics::{analyze_static, audit_plan, RaceVerdict, StaticReport};
pub use sweep::{
    analyze_registry, analyze_registry_with_progress, DeterminismCounts, SweepConfig, SweepFinding,
    SweepReport,
};
