//! Verifier pass 3: the IR lint.
//!
//! The successor of the retired text-based CUDA lint
//! (`crates/analyze/src/codegen.rs`, deleted once verdict parity across
//! the whole registry was proven — see the `lint_parity` regression test).
//! The text lint audited the emitted *string* and could silently drift
//! from the emitter; this pass audits the typed IR the emitter renders
//! from, so the two cannot disagree about what the kernel contains. The
//! same three properties are checked:
//!
//! * **no residual NULL loads** — pass-1 fusion must eliminate every
//!   [`Value::Zero`] placeholder; one surviving into the statement list
//!   would render as a `0.0f` load;
//! * **no unused operand buffers** — an operand the operator declares
//!   (`A`/`B` non-`Null`) must be loaded somewhere in the body;
//! * **atomics match the race verdict** — the store's update form is
//!   atomic if and only if the write-set race analysis says the schedule
//!   can race.

use ugrapher_core::abstraction::TensorType;
use ugrapher_core::analysis::race_verdict;
use ugrapher_core::ir::{KernelIr, OperandBuf, Stmt, Value};

/// One IR lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrFinding {
    /// The statement list still contains the `0.0f` placeholder of a
    /// `Null` operand — pass-1 fusion should have removed the stage.
    ResidualNullLoad {
        /// How many placeholder values survived.
        occurrences: usize,
    },
    /// The operator declares this operand, but no statement loads its
    /// buffer.
    UnusedOperandBuffer {
        /// `"A"` or `"B"`.
        operand: &'static str,
    },
    /// The store's update form contradicts the race verdict.
    AtomicContradiction {
        /// What the race analysis requires.
        verdict_atomic: bool,
        /// Whether the store uses an atomic update form.
        body_atomic: bool,
    },
    /// The statement list has no output store to audit.
    MissingStore,
}

impl std::fmt::Display for IrFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrFinding::ResidualNullLoad { occurrences } => write!(
                f,
                "{occurrences} residual NULL-operand load(s) (0.0f) survived fusion"
            ),
            IrFinding::UnusedOperandBuffer { operand } => write!(
                f,
                "operand buffer {operand} is declared by the operator but never read by the kernel"
            ),
            IrFinding::AtomicContradiction {
                verdict_atomic,
                body_atomic,
            } => write!(
                f,
                "race verdict requires atomics={verdict_atomic} but kernel body has atomics={body_atomic}"
            ),
            IrFinding::MissingStore => write!(f, "kernel IR contains no output store"),
        }
    }
}

/// Lints a lowered kernel IR. Returns every finding; an empty vector means
/// the IR is consistent with the operator declaration and the race
/// verdict.
pub fn lint_ir(ir: &KernelIr) -> Vec<IrFinding> {
    let mut findings = Vec::new();

    let values: Vec<&Value> = ir
        .body
        .iter()
        .flat_map(|s| match s {
            Stmt::DefineEdgeTmp { a, b, .. } => vec![a, b],
            Stmt::Store(st) => vec![&st.value],
        })
        .collect();

    let occurrences = values.iter().filter(|v| matches!(v, Value::Zero)).count();
    if occurrences > 0 {
        findings.push(IrFinding::ResidualNullLoad { occurrences });
    }

    for (operand, buf, ttype) in [("A", OperandBuf::A, ir.op.a), ("B", OperandBuf::B, ir.op.b)] {
        let loaded = values
            .iter()
            .any(|v| matches!(v, Value::Load(l) if l.buf == buf));
        if ttype != TensorType::Null && !loaded {
            findings.push(IrFinding::UnusedOperandBuffer { operand });
        }
    }

    let Some(Stmt::Store(store)) = ir.body.iter().find(|s| matches!(s, Stmt::Store(_))) else {
        findings.push(IrFinding::MissingStore);
        return findings;
    };
    let body_atomic = store.update.is_atomic();
    let verdict_atomic = race_verdict(&ir.op, &ir.parallel).needs_atomic;
    if body_atomic != verdict_atomic {
        findings.push(IrFinding::AtomicContradiction {
            verdict_atomic,
            body_atomic,
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::abstraction::OpInfo;
    use ugrapher_core::ir::UpdateKind;
    use ugrapher_core::lower::lower;
    use ugrapher_core::plan::KernelPlan;
    use ugrapher_core::schedule::{ParallelInfo, Strategy};

    fn ir(op: OpInfo, strategy: Strategy) -> KernelIr {
        let plan = KernelPlan::generate(op, ParallelInfo::basic(strategy), 500, 2000, 16).unwrap();
        lower(&plan).unwrap()
    }

    #[test]
    fn freshly_lowered_registry_is_clean() {
        for op in ugrapher_core::abstraction::registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                assert_eq!(lint_ir(&ir(op, strategy)), vec![], "{op:?} {strategy:?}");
            }
        }
    }

    #[test]
    fn stripped_atomics_are_flagged() {
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadEdge);
        if let Stmt::Store(s) = k.body.last_mut().unwrap() {
            s.update = UpdateKind::Accumulate;
        }
        assert!(lint_ir(&k).contains(&IrFinding::AtomicContradiction {
            verdict_atomic: true,
            body_atomic: false,
        }));
    }

    #[test]
    fn spurious_atomics_are_flagged() {
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
        if let Stmt::Store(s) = k.body.last_mut().unwrap() {
            s.update = UpdateKind::AtomicAdd;
        }
        assert!(lint_ir(&k).contains(&IrFinding::AtomicContradiction {
            verdict_atomic: false,
            body_atomic: true,
        }));
    }

    #[test]
    fn degraded_operand_load_is_both_findings() {
        // Simulate the lowering bug the text lint used to catch: the A
        // load degraded to the NULL placeholder.
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadEdge);
        if let Stmt::Store(s) = k.body.last_mut().unwrap() {
            s.value = Value::Zero;
        }
        let findings = lint_ir(&k);
        assert!(findings
            .iter()
            .any(|f| matches!(f, IrFinding::ResidualNullLoad { .. })));
        assert!(findings.contains(&IrFinding::UnusedOperandBuffer { operand: "A" }));
    }

    #[test]
    fn missing_store_is_flagged() {
        let mut k = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
        k.body.retain(|s| !matches!(s, Stmt::Store(_)));
        assert!(lint_ir(&k).contains(&IrFinding::MissingStore));
    }
}
