//! The analyzer's typed failure modes.

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::CoreError;

use crate::bounds::BoundsViolation;
use crate::irlint::IrFinding;

/// A hard analysis failure: the triple is illegal, the plan disagrees with
/// the independent race analysis, the lowered IR contradicts it, an access
/// cannot be proved in-bounds, or the dynamic write-set trace refutes the
/// static verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// The plan's recorded `needs_atomic` flag disagrees with the race
    /// verdict derived independently from the write-set model — or the IR
    /// write-set derivation disagrees with either.
    AtomicMismatch {
        /// The operator under analysis.
        op: OpInfo,
        /// The schedule under analysis.
        schedule: ParallelInfo,
        /// What the plan recorded.
        plan_atomic: bool,
        /// What the analyzer derived.
        derived_atomic: bool,
        /// The derivation behind the analyzer's verdict.
        reason: String,
    },
    /// The `(operator, schedule, graph-shape)` triple failed the legality
    /// gate (illegal operator, zero schedule knob, empty feature dim) or
    /// plan generation / IR lowering rejected it.
    Illegal {
        /// The underlying core error.
        source: CoreError,
    },
    /// The lowered kernel IR contradicts the analysis (residual NULL
    /// loads, missing operand reads, atomics that contradict the verdict).
    Codegen {
        /// The operator whose IR was linted.
        op: OpInfo,
        /// The schedule whose IR was linted.
        schedule: ParallelInfo,
        /// Every finding, in statement order.
        findings: Vec<IrFinding>,
    },
    /// The symbolic bounds checker could not prove every load/store of the
    /// lowered kernel in-bounds for graphs passing `Graph::validate`.
    OutOfBounds {
        /// The operator whose kernel failed the proof.
        op: OpInfo,
        /// The schedule whose kernel failed the proof.
        schedule: ParallelInfo,
        /// The failed obligation with its concrete witness index
        /// expression.
        violation: BoundsViolation,
    },
    /// The simulated write-set trace disagrees with the static verdict:
    /// either conflicts appeared where the witness analysis proved none can,
    /// a predicted witness produced no observed conflict, or a contended
    /// word carried a non-atomic write.
    DynamicMismatch {
        /// The operator under test.
        op: OpInfo,
        /// The schedule under test.
        schedule: ParallelInfo,
        /// Whether the static analysis produced a concrete race witness.
        static_witness: bool,
        /// Output words written by two or more work items.
        contended: usize,
        /// Contended words with at least one non-atomic write.
        unprotected: usize,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::AtomicMismatch {
                op,
                schedule,
                plan_atomic,
                derived_atomic,
                reason,
            } => write!(
                f,
                "atomic mismatch for {op:?} under {schedule}: plan says needs_atomic={plan_atomic}, \
                 write-set analysis derives {derived_atomic} ({reason})"
            ),
            AnalyzeError::Illegal { source } => write!(f, "illegal analysis input: {source}"),
            AnalyzeError::Codegen {
                op,
                schedule,
                findings,
            } => {
                write!(
                    f,
                    "IR lint failed for {op:?} under {schedule}: {} finding(s):",
                    findings.len()
                )?;
                for finding in findings {
                    write!(f, " [{finding}]")?;
                }
                Ok(())
            }
            AnalyzeError::OutOfBounds {
                op,
                schedule,
                violation,
            } => write!(
                f,
                "bounds proof failed for {op:?} under {schedule}: {violation}"
            ),
            AnalyzeError::DynamicMismatch {
                op,
                schedule,
                static_witness,
                contended,
                unprotected,
            } => write!(
                f,
                "dynamic cross-check failed for {op:?} under {schedule}: static witness={}, \
                 observed {contended} contended word(s), {unprotected} unprotected",
                if *static_witness { "yes" } else { "none" },
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Illegal { source } => Some(source),
            _ => None,
        }
    }
}

impl From<CoreError> for AnalyzeError {
    fn from(source: CoreError) -> Self {
        AnalyzeError::Illegal { source }
    }
}
