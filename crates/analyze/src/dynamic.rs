//! The dynamic cross-check: validate the static race verdict against the
//! simulator's instrumented access stream.
//!
//! [`ugrapher_core::exec::collect_writes`] replays the schedule at full
//! fidelity with the sim's write log enabled, recording every output store
//! and atomic at word granularity. Because the tracer emits exactly one
//! store per output element per owning work item, the observed log is a
//! direct oracle for the static analysis:
//!
//! * a word written twice ⇔ two distinct work items share an output
//!   element ⇔ the static witness search must have found a racing pair;
//! * a contended word containing a non-atomic write is an unprotected
//!   race — the verdict failed to require atomics the schedule needed.
//!
//! Any disagreement is an [`AnalyzeError::DynamicMismatch`].

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::collect_writes;
use ugrapher_core::plan::KernelPlan;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;

use crate::error::AnalyzeError;
use crate::statics::RaceVerdict;

/// The agreeing outcome of one static-vs-dynamic comparison.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// The static verdict (with its concrete-graph witness) that the trace
    /// confirmed.
    pub verdict: RaceVerdict,
    /// Output words written by two or more work items.
    pub contended: usize,
    /// Distinct output words written at all.
    pub words_written: usize,
}

impl CrossCheck {
    /// `true` when the trace observed at least one multi-writer word.
    pub fn observed_conflicts(&self) -> bool {
        self.contended > 0
    }
}

/// Cross-checks the static race verdict for one triple against a
/// full-fidelity simulated execution (see module docs). Use a feature
/// dimension that tiles evenly (a power of two) so the write-set is
/// word-exact.
///
/// # Errors
///
/// Returns [`AnalyzeError::Illegal`] when the triple is illegal and
/// [`AnalyzeError::DynamicMismatch`] when the observed write-set refutes
/// the static verdict.
pub fn cross_check(
    graph: &Graph,
    op: OpInfo,
    parallel: ParallelInfo,
    feat: usize,
    device: &DeviceConfig,
) -> Result<CrossCheck, AnalyzeError> {
    let plan = KernelPlan::generate(op, parallel, graph.num_vertices(), graph.num_edges(), feat)?;
    cross_check_plan(graph, &plan, device)
}

/// [`cross_check`] for an already-built plan (the registry sweep reuses the
/// plan from its static pass rather than regenerating it).
///
/// # Errors
///
/// Same contract as [`cross_check`].
pub fn cross_check_plan(
    graph: &Graph,
    plan: &KernelPlan,
    device: &DeviceConfig,
) -> Result<CrossCheck, AnalyzeError> {
    let verdict = RaceVerdict::derive(graph, &plan.op, &plan.parallel);
    let log = collect_writes(graph, plan, device)?;
    let contended = log.contended_addresses().len();
    let unprotected = log.unprotected_addresses().len();
    let agree = (contended > 0) == verdict.witness.is_some() && unprotected == 0;
    if !agree {
        return Err(AnalyzeError::DynamicMismatch {
            op: plan.op,
            schedule: plan.parallel,
            static_witness: verdict.witness.is_some(),
            contended,
            unprotected,
        });
    }
    Ok(CrossCheck {
        verdict,
        contended,
        words_written: log.num_addresses(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::schedule::Strategy;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn verdicts_confirmed_across_strategies() {
        let g = uniform_random(150, 1200, 5); // mean degree 8
        let d = DeviceConfig::v100();
        for (strategy, expect_conflicts) in [
            (Strategy::ThreadVertex, false),
            (Strategy::WarpVertex, false),
            (Strategy::ThreadEdge, true),
            (Strategy::WarpEdge, true),
        ] {
            let cc = cross_check(
                &g,
                OpInfo::aggregation_sum(),
                ParallelInfo::basic(strategy),
                8,
                &d,
            )
            .unwrap();
            assert_eq!(cc.observed_conflicts(), expect_conflicts, "{strategy:?}");
            assert_eq!(cc.verdict.witness.is_some(), expect_conflicts);
        }
    }

    #[test]
    fn whole_graph_grouping_has_no_conflicts_despite_atomic_verdict() {
        // Grouping >= num_edges: one work item owns every edge, so the
        // shape-generic verdict stays atomic but no witness exists and the
        // trace must observe zero contention.
        let g = uniform_random(40, 50, 6);
        let cc = cross_check(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadEdge, 64, 1),
            8,
            &DeviceConfig::v100(),
        )
        .unwrap();
        assert!(cc.verdict.needs_atomic);
        assert!(cc.verdict.witness.is_none());
        assert!(!cc.observed_conflicts());
    }

    #[test]
    fn edge_outputs_write_every_word_once() {
        let g = uniform_random(100, 800, 7);
        let cc = cross_check(
            &g,
            OpInfo::message_creation_add(),
            ParallelInfo::basic(Strategy::WarpEdge),
            8,
            &DeviceConfig::v100(),
        )
        .unwrap();
        assert!(!cc.verdict.needs_atomic);
        assert_eq!(cc.contended, 0);
        assert_eq!(cc.words_written, g.num_edges() * 8);
    }
}
