//! The codegen lint pass: parses an emitted CUDA translation unit and
//! checks it against the plan and the independently derived race verdict.
//!
//! The emitter in `ugrapher_core::codegen_cuda` is covered by its own
//! structural tests; this pass exists for the other direction — auditing a
//! source *string* (freshly emitted, stored on disk, or hand-edited)
//! without trusting the plan that claims to describe it. Three properties
//! are checked:
//!
//! * **no residual NULL loads** — after pass-1 fusion a `Null` operand must
//!   not survive as a `0.0f` placeholder load in the kernel body;
//! * **no unused operand buffers** — an operand the operator declares
//!   (`A`/`B` non-`Null`) must actually be read by the kernel body; a
//!   missing read means codegen dropped a load;
//! * **atomics match the race verdict** — the body contains atomic update
//!   statements (`atomicAdd` / the `atomicCAS` float-max loop) if and only
//!   if the write-set race analysis says the schedule can race.

use ugrapher_core::abstraction::TensorType;
use ugrapher_core::analysis::race_verdict;
use ugrapher_core::plan::KernelPlan;

/// One codegen lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenFinding {
    /// The kernel body still loads the `0.0f` placeholder of a `Null`
    /// operand — pass-1 fusion should have removed the stage entirely.
    ResidualNullLoad {
        /// How many `0.0f` placeholder loads survived.
        occurrences: usize,
    },
    /// The operator declares this operand, but the kernel body never
    /// indexes its buffer.
    UnusedOperandBuffer {
        /// `"A"` or `"B"`.
        operand: &'static str,
    },
    /// The body's atomic statements contradict the race verdict.
    AtomicContradiction {
        /// What the race analysis requires.
        verdict_atomic: bool,
        /// Whether the body contains atomic updates.
        body_atomic: bool,
    },
    /// The source has no `__global__` kernel to lint.
    MissingKernel,
}

impl std::fmt::Display for CodegenFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenFinding::ResidualNullLoad { occurrences } => write!(
                f,
                "{occurrences} residual NULL-operand load(s) (0.0f) survived fusion"
            ),
            CodegenFinding::UnusedOperandBuffer { operand } => write!(
                f,
                "operand buffer {operand} is declared by the operator but never read by the kernel"
            ),
            CodegenFinding::AtomicContradiction {
                verdict_atomic,
                body_atomic,
            } => write!(
                f,
                "race verdict requires atomics={verdict_atomic} but kernel body has atomics={body_atomic}"
            ),
            CodegenFinding::MissingKernel => write!(f, "source contains no __global__ kernel"),
        }
    }
}

/// Lints a CUDA translation unit against `plan`. Returns every finding; an
/// empty vector means the source is consistent with the plan and the race
/// verdict.
///
/// Only the kernel body (everything after `__global__`) is inspected, so
/// the header comment and the generated device function do not trigger
/// false positives.
pub fn lint_cuda(source: &str, plan: &KernelPlan) -> Vec<CodegenFinding> {
    let mut findings = Vec::new();
    let Some(body) = source.split("__global__").nth(1) else {
        return vec![CodegenFinding::MissingKernel];
    };

    let occurrences = body.matches("0.0f").count();
    if occurrences > 0 {
        findings.push(CodegenFinding::ResidualNullLoad { occurrences });
    }

    for (operand, ttype) in [("A", plan.op.a), ("B", plan.op.b)] {
        if ttype != TensorType::Null && !body.contains(&format!("{operand}[")) {
            findings.push(CodegenFinding::UnusedOperandBuffer { operand });
        }
    }

    let body_atomic = body.contains("atomicAdd(") || body.contains("atomicCAS(");
    let verdict_atomic = race_verdict(&plan.op, &plan.parallel).needs_atomic;
    if body_atomic != verdict_atomic {
        findings.push(CodegenFinding::AtomicContradiction {
            verdict_atomic,
            body_atomic,
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::abstraction::OpInfo;
    use ugrapher_core::codegen_cuda::emit_cuda;
    use ugrapher_core::schedule::{ParallelInfo, Strategy};

    fn plan(op: OpInfo, p: ParallelInfo) -> KernelPlan {
        KernelPlan::generate(op, p, 500, 2000, 16).unwrap()
    }

    #[test]
    fn freshly_emitted_source_is_clean() {
        for op in [
            OpInfo::aggregation_sum(),
            OpInfo::weighted_aggregation_sum(),
            OpInfo::aggregation_max(),
            OpInfo::message_creation_add(),
        ] {
            for strategy in Strategy::ALL {
                let p = plan(op, ParallelInfo::basic(strategy));
                let src = emit_cuda(&p).unwrap();
                assert_eq!(lint_cuda(&src, &p), vec![], "{op:?} {strategy:?}");
            }
        }
    }

    #[test]
    fn stripped_atomics_are_flagged() {
        let p = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
        );
        let src = emit_cuda(&p).unwrap().replace("atomicAdd(", "plainAdd(");
        let findings = lint_cuda(&src, &p);
        assert!(findings.contains(&CodegenFinding::AtomicContradiction {
            verdict_atomic: true,
            body_atomic: false,
        }));
    }

    #[test]
    fn spurious_atomics_are_flagged() {
        let p = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadVertex),
        );
        let src = emit_cuda(&p).unwrap().replace(
            "C[(size_t)dst * FEAT + f] +=",
            "atomicAdd(&C[(size_t)dst * FEAT + f],",
        );
        let findings = lint_cuda(&src, &p);
        assert!(findings.contains(&CodegenFinding::AtomicContradiction {
            verdict_atomic: false,
            body_atomic: true,
        }));
    }

    #[test]
    fn dropped_operand_load_and_null_placeholder_are_flagged() {
        let p = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
        );
        // Simulate a codegen bug: the A load degraded to the NULL
        // placeholder, so A is both unused and a residual 0.0f survives.
        let src = emit_cuda(&p)
            .unwrap()
            .replace("A[(size_t)src * FEAT + f]", "0.0f");
        let findings = lint_cuda(&src, &p);
        assert!(findings
            .iter()
            .any(|f| matches!(f, CodegenFinding::ResidualNullLoad { .. })));
        assert!(findings.contains(&CodegenFinding::UnusedOperandBuffer { operand: "A" }));
    }

    #[test]
    fn sources_without_kernels_are_flagged() {
        let p = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadVertex),
        );
        assert_eq!(
            lint_cuda("// nothing here\n", &p),
            vec![CodegenFinding::MissingKernel]
        );
    }
}
