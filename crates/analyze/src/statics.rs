//! The static analysis pass: race verdict with a concrete witness,
//! legality gate, schedule lints, and the IR verifier passes (bounds
//! proof, determinism classification, access patterns, IR lint) for one
//! `(operator, schedule, graph-shape)` triple.

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::analysis::{self, RaceWitness, ScheduleLint};
use ugrapher_core::codegen_cuda::emit_ir;
use ugrapher_core::ir::{KernelIr, OperandPatterns};
use ugrapher_core::lower::lower;
use ugrapher_core::plan::KernelPlan;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_graph::Graph;

use crate::bounds::{check_bounds, BoundsProof};
use crate::determinism::{classify, DeterminismReport};
use crate::error::AnalyzeError;
use crate::irlint::{lint_ir, IrFinding};

/// The analyzer's race verdict: the shape-generic atomic requirement plus,
/// when the schedule can race, two concrete work items of the given graph
/// that write the same output row (or `None` when this particular graph
/// cannot exhibit the race — e.g. the grouping is so large that one item
/// owns every edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceVerdict {
    /// Two parallel work items can write the same output element; the
    /// kernel must use atomic updates.
    pub needs_atomic: bool,
    /// Human-readable derivation of the verdict.
    pub reason: &'static str,
    /// A concrete pair of racing work items on the analyzed graph, when
    /// one exists.
    pub witness: Option<RaceWitness>,
}

impl RaceVerdict {
    /// Derives the verdict and searches the graph for a witness.
    pub fn derive(graph: &Graph, op: &OpInfo, parallel: &ParallelInfo) -> Self {
        let v = analysis::race_verdict(op, parallel);
        RaceVerdict {
            needs_atomic: v.needs_atomic,
            reason: v.reason,
            witness: analysis::race_witness(graph, op, parallel),
        }
    }
}

/// Everything the static pass derives about one triple.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// The generated (or audited) kernel plan.
    pub plan: KernelPlan,
    /// The race verdict with its concrete-graph witness.
    pub race: RaceVerdict,
    /// Warning-level schedule findings (clamped tiling, degenerate
    /// grouping); legal but wasteful.
    pub schedule_lints: Vec<ScheduleLint>,
    /// The typed kernel IR the plan lowered to — the emitter renders
    /// [`StaticReport::cuda`] from exactly this value.
    pub ir: KernelIr,
    /// The discharged symbolic bounds proof for every load/store.
    pub bounds: BoundsProof,
    /// The determinism classification of the lowered kernel.
    pub determinism: DeterminismReport,
    /// Per-operand memory-access-pattern classification.
    pub access: OperandPatterns,
    /// IR lint findings (residual NULL loads, unused operands, atomic
    /// contradictions).
    pub codegen: Vec<IrFinding>,
    /// The CUDA translation unit rendered from [`StaticReport::ir`].
    pub cuda: String,
}

impl StaticReport {
    /// `true` when no lint fired; the race verdict itself (atomic or not)
    /// is a property, not a finding.
    pub fn is_clean(&self) -> bool {
        self.schedule_lints.is_empty() && self.codegen.is_empty()
    }

    /// Converts lint findings into a hard error (used by CI, which fails
    /// on any finding).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Codegen`] if any IR lint fired.
    pub fn expect_clean_codegen(&self) -> Result<(), AnalyzeError> {
        if self.codegen.is_empty() {
            Ok(())
        } else {
            Err(AnalyzeError::Codegen {
                op: self.plan.op,
                schedule: self.plan.parallel,
                findings: self.codegen.clone(),
            })
        }
    }
}

/// Statically analyzes an `(operator, schedule, graph-shape)` triple
/// *before* execution: legality gate, plan generation, independent race
/// verdict (checked against the plan's `needs_atomic` *and* the IR
/// write-set), schedule lints, and the IR verifier passes over the lowered
/// kernel.
///
/// # Errors
///
/// Returns [`AnalyzeError::Illegal`] when the triple fails the legality
/// gate, [`AnalyzeError::AtomicMismatch`] when plan generation and the
/// write-set analysis disagree, and [`AnalyzeError::OutOfBounds`] when the
/// symbolic bounds proof fails.
pub fn analyze_static(
    graph: &Graph,
    op: OpInfo,
    parallel: ParallelInfo,
    feat: usize,
) -> Result<StaticReport, AnalyzeError> {
    analysis::check_context(&op, &parallel, feat)?;
    let plan = KernelPlan::generate(op, parallel, graph.num_vertices(), graph.num_edges(), feat)?;
    audit_plan(graph, &plan)
}

/// Audits an already-built [`KernelPlan`] against the independent race
/// analysis — the entry point for plans that did not come out of
/// [`KernelPlan::generate`] moments ago (deserialized, cached, or mutated).
///
/// Three independent derivations of the race verdict must agree: the
/// plan's recorded `needs_atomic`, the write-set analysis
/// ([`ugrapher_core::analysis::race_verdict`]), and the store shape of the
/// lowered IR ([`KernelIr::store_races`]).
///
/// # Errors
///
/// Returns [`AnalyzeError::AtomicMismatch`] when any two race derivations
/// disagree, [`AnalyzeError::OutOfBounds`] when an access cannot be proved
/// in-bounds, and [`AnalyzeError::Illegal`] when lowering rejects the
/// plan.
pub fn audit_plan(graph: &Graph, plan: &KernelPlan) -> Result<StaticReport, AnalyzeError> {
    let race = RaceVerdict::derive(graph, &plan.op, &plan.parallel);
    if plan.needs_atomic != race.needs_atomic {
        return Err(AnalyzeError::AtomicMismatch {
            op: plan.op,
            schedule: plan.parallel,
            plan_atomic: plan.needs_atomic,
            derived_atomic: race.needs_atomic,
            reason: race.reason.to_owned(),
        });
    }
    let schedule_lints = analysis::lint_schedule(
        &plan.op,
        &plan.parallel,
        plan.feat,
        graph.num_vertices(),
        graph.num_edges(),
    );
    let ir = lower(plan)?;
    // The IR write-set is the third, independent derivation of the race
    // verdict; it must agree with the other two.
    if ir.store_races() != race.needs_atomic {
        return Err(AnalyzeError::AtomicMismatch {
            op: plan.op,
            schedule: plan.parallel,
            plan_atomic: plan.needs_atomic,
            derived_atomic: ir.store_races(),
            reason: "IR write-set derivation disagrees with the shared race analysis".to_owned(),
        });
    }
    let bounds = check_bounds(&ir).map_err(|violation| AnalyzeError::OutOfBounds {
        op: plan.op,
        schedule: plan.parallel,
        violation,
    })?;
    let determinism = classify(&ir);
    let access = ir.operand_patterns();
    let codegen = lint_ir(&ir);
    let cuda = emit_ir(&ir);
    Ok(StaticReport {
        plan: plan.clone(),
        race,
        schedule_lints,
        ir,
        bounds,
        determinism,
        access,
        codegen,
        cuda,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::ir::DeterminismClass;
    use ugrapher_core::schedule::Strategy;
    use ugrapher_core::CoreError;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn clean_triple_produces_clean_report() {
        let g = uniform_random(200, 1600, 1);
        let rep = analyze_static(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
            8,
        )
        .unwrap();
        assert!(rep.is_clean());
        assert!(rep.race.needs_atomic);
        assert!(rep.race.witness.is_some(), "dense graph must witness");
        assert!(rep.plan.needs_atomic);
        rep.expect_clean_codegen().unwrap();
        // The verifier passes populated the report.
        assert!(rep.bounds.num_accesses() >= 2);
        assert_eq!(
            rep.determinism.class,
            DeterminismClass::AtomicOrderDependent
        );
        assert!(rep.ir.store_races());
        assert!(rep.cuda.contains("atomicAdd"));
    }

    #[test]
    fn mutated_plan_is_an_atomic_mismatch() {
        let g = uniform_random(200, 1600, 2);
        let mut plan = KernelPlan::generate(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
            g.num_vertices(),
            g.num_edges(),
            8,
        )
        .unwrap();
        plan.needs_atomic = false;
        match audit_plan(&g, &plan) {
            Err(AnalyzeError::AtomicMismatch {
                plan_atomic: false,
                derived_atomic: true,
                ..
            }) => {}
            other => panic!("expected AtomicMismatch, got {other:?}"),
        }
    }

    #[test]
    fn illegal_triples_are_typed_errors() {
        let g = uniform_random(100, 400, 3);
        let err = analyze_static(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo {
                strategy: Strategy::ThreadEdge,
                grouping: 0,
                tiling: 1,
            },
            8,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AnalyzeError::Illegal {
                source: CoreError::InvalidSchedule { .. }
            }
        ));
    }

    #[test]
    fn degenerate_knobs_surface_as_schedule_lints() {
        let g = uniform_random(40, 50, 4);
        let rep = analyze_static(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadEdge, 64, 64),
            8,
        )
        .unwrap();
        assert!(!rep.is_clean());
        assert_eq!(rep.schedule_lints.len(), 2, "{:?}", rep.schedule_lints);
        assert!(rep.codegen.is_empty(), "codegen itself is consistent");
    }

    #[test]
    fn report_carries_access_patterns() {
        use ugrapher_core::ir::AccessPattern;
        let g = uniform_random(100, 800, 9);
        let rep = analyze_static(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::WarpEdge),
            8,
        )
        .unwrap();
        assert_eq!(rep.access.a, Some(AccessPattern::Coalesced));
        assert_eq!(rep.access.c, AccessPattern::Coalesced);
        let rep = analyze_static(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
            8,
        )
        .unwrap();
        assert_eq!(rep.access.a, Some(AccessPattern::Gather));
    }
}
