//! CI driver: sweep the full operator registry × strategies × knob
//! variants through the static analyzer, the IR verifier passes, and the
//! dynamic sim cross-check. Exits non-zero on any finding (atomic
//! mismatch, bounds violation, legality or schedule lint, IR lint, or a
//! static↔dynamic disagreement).
//!
//! `--progress[=N]` prints a one-line counter every `N` combinations
//! (default 100), sourced from the process-wide metrics registry
//! (`ugrapher_analyze_combos_total`).
//!
//! `--json` writes the machine-readable [`SweepReport`] (compact JSON,
//! including bounds-proof and determinism tallies and the sweep's trace
//! id) to stdout; human-readable summary and progress lines move to
//! stderr so stdout stays parseable. The exit code contract is unchanged.
//!
//! [`SweepReport`]: ugrapher_analyze::SweepReport

use std::process::ExitCode;

use ugrapher_analyze::{analyze_registry_with_progress, SweepConfig};
use ugrapher_obs::{metrics, MetricsRegistry};
use ugrapher_sim::DeviceConfig;

struct Options {
    progress_every: Option<usize>,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        progress_every: None,
        json: false,
    };
    for arg in args {
        if arg == "--progress" {
            opts.progress_every = Some(100);
        } else if let Some(n) = arg.strip_prefix("--progress=") {
            opts.progress_every = Some(
                n.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--progress={n}: expected a positive integer"))?,
            );
        } else if arg == "--json" {
            opts.json = true;
        } else {
            return Err(format!("unknown argument {arg}"));
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analyze-registry: {e}");
            eprintln!("usage: analyze-registry [--progress[=N]] [--json]");
            return ExitCode::from(2);
        }
    };
    // With --json, stdout carries exactly one JSON document; everything
    // human-readable goes to stderr.
    let say = |line: String| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let cfg = SweepConfig::full();
    let device = DeviceConfig::v100();
    say(format!(
        "analyze-registry: graph |V|={} |E|={} feat={} groupings={:?} tilings={:?}",
        cfg.num_vertices, cfg.num_edges, cfg.feat, cfg.groupings, cfg.tilings
    ));
    let mut tick = |checked: usize| {
        if let Some(every) = opts.progress_every {
            if checked.is_multiple_of(every) {
                say(format!(
                    "progress: {checked} combos checked ({}={})",
                    metrics::ANALYZE_COMBOS,
                    MetricsRegistry::global().counter(metrics::ANALYZE_COMBOS)
                ));
            }
        }
    };
    let report = analyze_registry_with_progress(
        &device,
        &cfg,
        opts.progress_every.is_some().then_some(&mut tick as &mut _),
    );
    say(format!(
        "checked {} combinations: {} static race witnesses, {} dynamically confirmed, \
         {} bounds proofs, determinism {}/{}/{} (seq/insensitive/dependent)",
        report.combos_checked,
        report.static_witnesses,
        report.dynamic_conflicts,
        report.bounds_proved,
        report.determinism.sequential,
        report.determinism.atomic_order_insensitive,
        report.determinism.atomic_order_dependent,
    ));
    if opts.json {
        println!("{}", report.to_json());
    }
    if report.is_clean() {
        say("analyze-registry: clean (0 findings)".to_owned());
        return ExitCode::SUCCESS;
    }
    eprintln!("analyze-registry: {} finding(s):", report.findings.len());
    for finding in &report.findings {
        eprintln!("  {finding}");
    }
    ExitCode::FAILURE
}
