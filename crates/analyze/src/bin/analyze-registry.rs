//! CI driver: sweep the full operator registry × strategies × knob
//! variants through the static analyzer and the dynamic sim cross-check.
//! Exits non-zero on any finding (atomic mismatch, legality or schedule
//! lint, codegen lint, or a static↔dynamic disagreement).
//!
//! `--progress[=N]` prints a one-line counter every `N` combinations
//! (default 100), sourced from the process-wide metrics registry
//! (`ugrapher_analyze_combos_total`).

use std::process::ExitCode;

use ugrapher_analyze::{analyze_registry_with_progress, SweepConfig};
use ugrapher_obs::{metrics, MetricsRegistry};
use ugrapher_sim::DeviceConfig;

fn parse_progress(args: &[String]) -> Result<Option<usize>, String> {
    let mut every = None;
    for arg in args {
        if arg == "--progress" {
            every = Some(100);
        } else if let Some(n) = arg.strip_prefix("--progress=") {
            every = Some(
                n.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--progress={n}: expected a positive integer"))?,
            );
        } else {
            return Err(format!("unknown argument {arg}"));
        }
    }
    Ok(every)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let progress_every = match parse_progress(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("analyze-registry: {e}");
            eprintln!("usage: analyze-registry [--progress[=N]]");
            return ExitCode::from(2);
        }
    };
    let cfg = SweepConfig::full();
    let device = DeviceConfig::v100();
    println!(
        "analyze-registry: graph |V|={} |E|={} feat={} groupings={:?} tilings={:?}",
        cfg.num_vertices, cfg.num_edges, cfg.feat, cfg.groupings, cfg.tilings
    );
    let mut tick = |checked: usize| {
        if let Some(every) = progress_every {
            if checked.is_multiple_of(every) {
                println!(
                    "progress: {checked} combos checked ({}={})",
                    metrics::ANALYZE_COMBOS,
                    MetricsRegistry::global().counter(metrics::ANALYZE_COMBOS)
                );
            }
        }
    };
    let report = analyze_registry_with_progress(
        &device,
        &cfg,
        progress_every.is_some().then_some(&mut tick as &mut _),
    );
    println!(
        "checked {} combinations: {} static race witnesses, {} dynamically confirmed",
        report.combos_checked, report.static_witnesses, report.dynamic_conflicts
    );
    if report.is_clean() {
        println!("analyze-registry: clean (0 findings)");
        return ExitCode::SUCCESS;
    }
    eprintln!("analyze-registry: {} finding(s):", report.findings.len());
    for finding in &report.findings {
        eprintln!("  {finding}");
    }
    ExitCode::FAILURE
}
