//! CI driver: sweep the full operator registry × strategies × knob
//! variants through the static analyzer and the dynamic sim cross-check.
//! Exits non-zero on any finding (atomic mismatch, legality or schedule
//! lint, codegen lint, or a static↔dynamic disagreement).

use std::process::ExitCode;

use ugrapher_analyze::{analyze_registry, SweepConfig};
use ugrapher_sim::DeviceConfig;

fn main() -> ExitCode {
    let cfg = SweepConfig::full();
    let device = DeviceConfig::v100();
    println!(
        "analyze-registry: graph |V|={} |E|={} feat={} groupings={:?} tilings={:?}",
        cfg.num_vertices, cfg.num_edges, cfg.feat, cfg.groupings, cfg.tilings
    );
    let report = analyze_registry(&device, &cfg);
    println!(
        "checked {} combinations: {} static race witnesses, {} dynamically confirmed",
        report.combos_checked, report.static_witnesses, report.dynamic_conflicts
    );
    if report.is_clean() {
        println!("analyze-registry: clean (0 findings)");
        return ExitCode::SUCCESS;
    }
    eprintln!("analyze-registry: {} finding(s):", report.findings.len());
    for finding in &report.findings {
        eprintln!("  {finding}");
    }
    ExitCode::FAILURE
}
